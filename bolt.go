// Package bolt is the public API of this reproduction of "Parallelizing
// Top-Down Interprocedural Analyses" (Albarghouthi, Kumar, Nori, Rajamani;
// PLDI 2012). It parses programs in a small imperative language and
// verifies reachability/safety questions with BOLT: a MapReduce-style
// parallel engine over demand-driven interprocedural queries,
// parameterized by an intraprocedural analysis (PUNCH) — a may-must
// (DASH-style) analysis by default, with pure may (SLAM/BLAST-style) and
// pure must (DART-style) instantiations available.
//
// Quickstart:
//
//	prog, err := bolt.Parse(src)
//	res := prog.Check(bolt.Options{Threads: 8})
//	fmt.Println(res.Verdict)
package bolt

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/punch"
	"repro/internal/punch/may"
	"repro/internal/punch/maymust"
	"repro/internal/punch/must"
	"repro/internal/summary"
	"repro/internal/witness"
)

// Program is a parsed, validated program.
type Program struct {
	prog *cfg.Program
}

// Parse parses a program in the input language. Assertions and aborts are
// compiled to the standard error-flag encoding checked by Check.
func Parse(src string) (*Program, error) {
	p, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Program{prog: p}, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// String renders the program's control-flow graphs.
func (p *Program) String() string { return p.prog.String() }

// Dot renders the control-flow graphs in Graphviz DOT format.
func (p *Program) Dot() string { return p.prog.Dot() }

// Procedures returns the procedure names.
func (p *Program) Procedures() []string { return p.prog.ProcNames() }

// Main returns the entry procedure name.
func (p *Program) Main() string { return p.prog.Main }

// Analysis selects the PUNCH instantiation.
type Analysis int

// Available intraprocedural analyses.
const (
	// MayMust is the DASH/SYNERGY-style combination used in the paper's
	// evaluation (the default).
	MayMust Analysis = iota
	// May is the SLAM/BLAST-style abstraction-refinement analysis.
	May
	// Must is the DART/CUTE-style directed-testing analysis (finds bugs;
	// proves safety only for exhaustively explorable procedures).
	Must
)

func (a Analysis) String() string {
	switch a {
	case MayMust:
		return "may-must"
	case May:
		return "may"
	case Must:
		return "must"
	}
	return fmt.Sprintf("Analysis(%d)", int(a))
}

// Verdict is the outcome of a verification run.
type Verdict int

// Verdicts.
const (
	// Unknown: resources exhausted before an answer was found.
	Unknown Verdict = iota
	// Safe: the error states are proven unreachable.
	Safe
	// ErrorReachable: some execution reaches the error states.
	ErrorReachable
)

func (v Verdict) String() string {
	switch v {
	case Safe:
		return "Program is Safe"
	case ErrorReachable:
		return "Error Reachable"
	}
	return "Unknown (resources exhausted)"
}

// StopReason explains why a run terminated. Every Result carries exactly
// one; an Unknown verdict always comes with the reason the engine gave
// up (budget, deadlock, cancellation, or — for the distributed
// simulation — total node failure).
type StopReason int

// Stop reasons. The values mirror internal/core.StopReason one to one.
const (
	// StopNone: the run did not record a reason (zero value).
	StopNone StopReason = iota
	// StopRootAnswered: the verification question was answered.
	StopRootAnswered
	// StopWallTimeout: the wall-clock budget expired.
	StopWallTimeout
	// StopTickBudget: the virtual-time budget expired.
	StopTickBudget
	// StopEventBudget: the iteration/event/round budget was exhausted.
	StopEventBudget
	// StopDeadlocked: every live query was Blocked with no way to make
	// progress.
	StopDeadlocked
	// StopCancelled: the caller's context was cancelled.
	StopCancelled
	// StopNodeFailure: injected faults killed the whole simulated
	// cluster.
	StopNodeFailure
)

func (r StopReason) String() string { return core.StopReason(r).String() }

// Options configure a verification run.
type Options struct {
	// Analysis selects the PUNCH instantiation (default MayMust).
	Analysis Analysis
	// Threads is the paper's throttle: Ready queries processed per MAP
	// stage and concurrent PUNCH instances. 1 = sequential. Default 1.
	Threads int
	// VirtualCores for the deterministic virtual clock (default: Threads).
	VirtualCores int
	// MaxVirtualTicks bounds virtual time (0 = unbounded).
	MaxVirtualTicks int64
	// Timeout bounds wall-clock time (0 = unbounded).
	Timeout time.Duration
	// Speculate enables the §7 speculative extension.
	Speculate bool
	// Async selects the streaming work-stealing engine: persistent
	// workers, incremental REDUCE per completed query, and root-done
	// cancellation instead of bulk-synchronous MAP/REDUCE batches. Same
	// verdicts, lower wall-clock on straggler-heavy workloads.
	Async bool
	// DisableGC and DisableSumDB are the ablation switches.
	DisableGC    bool
	DisableSumDB bool
	// FindWitness, on an ErrorReachable verdict from Check, searches for a
	// concrete counterexample (inputs + trace) and attaches it to the
	// result.
	FindWitness bool
}

// Result reports a verification run.
type Result struct {
	Verdict Verdict
	// StopReason records why the run ended; TimedOut and Deadlocked are
	// views derived from it.
	StopReason   StopReason
	TotalQueries int64
	PeakReady    int
	Iterations   int
	VirtualTicks int64
	WallTime     time.Duration
	TimedOut     bool
	Deadlocked   bool
	// Witness is a concrete counterexample (present only when the verdict
	// is ErrorReachable and Options.FindWitness was set, and the directed
	// search succeeded).
	Witness *Witness
}

// Witness is a concrete failing execution.
type Witness struct {
	// Inputs are the nondeterministic values, in draw order.
	Inputs []int64
	// Text is the human-readable trace.
	Text string
}

func newPunch(a Analysis) punch.Punch {
	switch a {
	case May:
		return may.New()
	case Must:
		return must.New()
	default:
		return maymust.New()
	}
}

func (o Options) engine(prog *cfg.Program) *core.Engine {
	return core.New(prog, core.Options{
		Punch:           newPunch(o.Analysis),
		MaxThreads:      max(1, o.Threads),
		VirtualCores:    o.VirtualCores,
		MaxVirtualTicks: o.MaxVirtualTicks,
		RealTimeout:     o.Timeout,
		Speculate:       o.Speculate,
		Async:           o.Async,
		DisableGC:       o.DisableGC,
		DisableSumDB:    o.DisableSumDB,
	})
}

func toResult(r core.Result) Result {
	out := Result{
		StopReason:   StopReason(r.StopReason),
		TotalQueries: r.TotalQueries,
		PeakReady:    r.PeakReady,
		Iterations:   r.Iterations,
		VirtualTicks: r.VirtualTicks,
		WallTime:     r.WallTime,
		TimedOut:     r.TimedOut,
		Deadlocked:   r.Deadlocked,
	}
	switch r.Verdict {
	case core.Safe:
		out.Verdict = Safe
	case core.ErrorReachable:
		out.Verdict = ErrorReachable
	}
	return out
}

// Check verifies the program's assertions: can main reach its exit with
// the error flag raised?
func (p *Program) Check(opts Options) Result {
	return p.CheckContext(context.Background(), opts)
}

// CheckContext is Check with external cancellation: cancelling ctx stops
// the run at the next scheduling boundary with StopReason StopCancelled
// and all workers joined.
func (p *Program) CheckContext(ctx context.Context, opts Options) Result {
	res := toResult(opts.engine(p.prog).RunContext(ctx, core.AssertionQuestion(p.prog)))
	if res.Verdict == ErrorReachable && opts.FindWitness {
		if tr, ok := witness.Find(p.prog, witness.Options{}); ok {
			res.Witness = &Witness{Inputs: tr.Havocs, Text: tr.Format()}
		}
	}
	return res
}

// CheckReach answers a general reachability question: can procedure proc,
// started in a state satisfying pre (a boolean expression over globals),
// reach its exit in a state satisfying post? A Safe verdict means post is
// unreachable; ErrorReachable means some execution reaches it.
func (p *Program) CheckReach(proc, pre, post string, opts Options) (Result, error) {
	return p.CheckReachContext(context.Background(), proc, pre, post, opts)
}

// CheckReachContext is CheckReach with external cancellation.
func (p *Program) CheckReachContext(ctx context.Context, proc, pre, post string, opts Options) (Result, error) {
	if p.prog.Proc(proc) == nil {
		return Result{}, fmt.Errorf("bolt: no procedure %q", proc)
	}
	preB, err := parser.ParseBoolExpr(pre)
	if err != nil {
		return Result{}, fmt.Errorf("bolt: precondition: %w", err)
	}
	postB, err := parser.ParseBoolExpr(post)
	if err != nil {
		return Result{}, fmt.Errorf("bolt: postcondition: %w", err)
	}
	q := summary.Question{Proc: proc, Pre: logic.FromBool(preB), Post: logic.FromBool(postB)}
	return toResult(opts.engine(p.prog).RunContext(ctx, q)), nil
}

// DistOptions configure a simulated-cluster verification run (the §7
// distributed design).
type DistOptions struct {
	// Analysis selects the PUNCH instantiation (default MayMust).
	Analysis Analysis
	// Nodes is the cluster size (default 2).
	Nodes int
	// ThreadsPerNode is each node's MAP-stage throttle (default 4).
	ThreadsPerNode int
	// SyncEvery is the gossip period in rounds (default 1).
	SyncEvery int
	// SyncCost is the virtual-time cost per gossip exchange.
	SyncCost int64
	// MaxRounds bounds the simulation (0 = default).
	MaxRounds int
	// Timeout bounds wall-clock time (0 = unbounded).
	Timeout time.Duration
	// Faults is a fault-injection spec "kill=N@R,drop=P,seed=S"; every
	// clause is optional and an empty spec injects nothing. See
	// core.ParseFaults for the grammar.
	Faults string
}

// DistResult reports a simulated-cluster run.
type DistResult struct {
	Verdict      Verdict
	StopReason   StopReason
	Rounds       int
	TotalQueries int64
	VirtualTicks int64
	WallTime     time.Duration
	// PerNodePeakLive is each node's peak live-query count (the memory
	// sharding payoff); PerNodeSummaries each node's final summary count.
	PerNodePeakLive  []int
	PerNodeSummaries []int
	SyncExchanges    int
	// Fault-injection accounting: nodes killed, queries re-routed off
	// dead nodes, summaries recovered by failover re-gossip, and gossip
	// deliveries deferred by injected loss.
	KilledNodes        []int
	ReroutedQueries    int
	RecoveredSummaries int
	DroppedDeliveries  int
}

// CheckDistributed verifies the program's assertions on the simulated
// cluster, optionally under an injected fault plan. Verdicts match Check;
// the distributed result additionally reports per-node memory peaks and
// fault-recovery accounting.
func (p *Program) CheckDistributed(ctx context.Context, opts DistOptions) (DistResult, error) {
	faults, err := core.ParseFaults(opts.Faults)
	if err != nil {
		return DistResult{}, fmt.Errorf("bolt: %w", err)
	}
	eng := core.NewDistributed(p.prog, core.DistOptions{
		Punch:          newPunch(opts.Analysis),
		Nodes:          opts.Nodes,
		ThreadsPerNode: opts.ThreadsPerNode,
		SyncEvery:      opts.SyncEvery,
		SyncCost:       opts.SyncCost,
		MaxRounds:      opts.MaxRounds,
		RealTimeout:    opts.Timeout,
		Faults:         faults,
	})
	r := eng.RunContext(ctx, core.AssertionQuestion(p.prog))
	out := DistResult{
		StopReason:         StopReason(r.StopReason),
		Rounds:             r.Rounds,
		TotalQueries:       r.TotalQueries,
		VirtualTicks:       r.VirtualTicks,
		WallTime:           r.WallTime,
		PerNodePeakLive:    r.PerNodePeakLive,
		PerNodeSummaries:   r.PerNodeSummaries,
		SyncExchanges:      r.SyncExchanges,
		KilledNodes:        r.KilledNodes,
		ReroutedQueries:    r.ReroutedQueries,
		RecoveredSummaries: r.RecoveredSummaries,
		DroppedDeliveries:  r.DroppedDeliveries,
	}
	switch r.Verdict {
	case core.Safe:
		out.Verdict = Safe
	case core.ErrorReachable:
		out.Verdict = ErrorReachable
	}
	return out, nil
}
