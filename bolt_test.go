package bolt_test

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	bolt "repro"
	"repro/internal/drivers"
	"repro/internal/obs"
)

const apiSample = `
program sample;
globals g;

proc main {
  g = 0;
  step();
  step();
  assert(g <= 2);
}

proc step { g = g + 1; }
`

func TestParseAndCheck(t *testing.T) {
	prog, err := bolt.Parse(apiSample)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Main() != "main" {
		t.Errorf("Main = %q", prog.Main())
	}
	procs := prog.Procedures()
	if len(procs) != 2 {
		t.Fatalf("Procedures = %v", procs)
	}
	res := prog.Check(bolt.Options{Threads: 4, Timeout: 30 * time.Second})
	if res.Verdict != bolt.Safe {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if res.TotalQueries < 2 {
		t.Errorf("expected sub-queries, got %d", res.TotalQueries)
	}
}

func TestParseError(t *testing.T) {
	_, err := bolt.Parse(`proc main { x = ; }`)
	if err == nil || !strings.Contains(err.Error(), "parse error") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckReach(t *testing.T) {
	prog := bolt.MustParse(apiSample)
	// Can main exit with g == 2? Yes (both steps taken).
	res, err := prog.CheckReach("main", "true", "g == 2", bolt.Options{Threads: 2, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != bolt.ErrorReachable {
		t.Fatalf("g==2: %v", res.Verdict)
	}
	// Can step exit with g == 10 from g == 0? No.
	res2, err := prog.CheckReach("step", "g == 0", "g == 10", bolt.Options{Threads: 2, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Verdict != bolt.Safe {
		t.Fatalf("g==10: %v", res2.Verdict)
	}
}

func TestCheckReachErrors(t *testing.T) {
	prog := bolt.MustParse(apiSample)
	if _, err := prog.CheckReach("ghost", "true", "true", bolt.Options{}); err == nil {
		t.Error("unknown procedure accepted")
	}
	if _, err := prog.CheckReach("main", "g >", "true", bolt.Options{}); err == nil {
		t.Error("bad precondition accepted")
	}
	if _, err := prog.CheckReach("main", "true", "g > )", bolt.Options{}); err == nil {
		t.Error("bad postcondition accepted")
	}
}

func TestAnalysisSelection(t *testing.T) {
	buggy := bolt.MustParse(`proc main { locals x; x = 1; assert(x > 5); }`)
	for _, a := range []bolt.Analysis{bolt.MayMust, bolt.May, bolt.Must} {
		res := buggy.Check(bolt.Options{Analysis: a, Threads: 2, Timeout: 30 * time.Second})
		if res.Verdict != bolt.ErrorReachable {
			t.Errorf("%v: verdict %v", a, res.Verdict)
		}
	}
}

func TestTimeoutYieldsUnknown(t *testing.T) {
	// An iteration-starved run must be Unknown, never a wrong answer.
	prog := bolt.MustParse(apiSample)
	res := prog.Check(bolt.Options{Threads: 1, MaxVirtualTicks: 1})
	if res.Verdict == bolt.ErrorReachable {
		t.Fatalf("wrong verdict under starvation: %v", res.Verdict)
	}
	if !res.TimedOut {
		t.Log("note: check finished within one tick (acceptable)")
	}
}

func TestVerdictStrings(t *testing.T) {
	if bolt.Safe.String() == "" || bolt.ErrorReachable.String() == "" || bolt.Unknown.String() == "" {
		t.Fatal("empty verdict strings")
	}
	if bolt.MayMust.String() != "may-must" || bolt.May.String() != "may" || bolt.Must.String() != "must" {
		t.Fatal("analysis strings")
	}
}

func TestWitnessAttachment(t *testing.T) {
	prog := bolt.MustParse(`
proc main {
  locals x;
  havoc x;
  if (x > 7) { assert(x <= 7); }
}`)
	res := prog.Check(bolt.Options{Threads: 2, FindWitness: true, Timeout: 30 * time.Second})
	if res.Verdict != bolt.ErrorReachable {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if res.Witness == nil {
		t.Fatal("no witness attached")
	}
	if !strings.Contains(res.Witness.Text, "error state") {
		t.Errorf("witness text: %s", res.Witness.Text)
	}
}

func TestDotFacade(t *testing.T) {
	prog := bolt.MustParse(apiSample)
	if !strings.Contains(prog.Dot(), "digraph") {
		t.Fatal("Dot output malformed")
	}
}

func TestFacadeOnGeneratedDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("driver verification is not short")
	}
	src := drivers.Source(drivers.NamedCheck("parport", "PowerDownFail", false).Config)
	prog, err := bolt.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res := prog.Check(bolt.Options{Threads: 8, Timeout: 120 * time.Second})
	if res.Verdict != bolt.Safe {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if res.VirtualTicks == 0 || res.TotalQueries < 2 {
		t.Errorf("stats look wrong: %+v", res)
	}
}

func TestCheckContextCancelled(t *testing.T) {
	prog, err := bolt.Parse(apiSample)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, async := range []bool{false, true} {
		res := prog.CheckContext(ctx, bolt.Options{Threads: 2, Async: async})
		if res.StopReason != bolt.StopCancelled {
			t.Errorf("async=%v: stop reason %v, want %v", async, res.StopReason, bolt.StopCancelled)
		}
		if res.Verdict != bolt.Unknown || res.TimedOut || res.Deadlocked {
			t.Errorf("async=%v: cancelled run reported %v timedOut=%v deadlocked=%v",
				async, res.Verdict, res.TimedOut, res.Deadlocked)
		}
	}
	if got := bolt.StopCancelled.String(); got != "cancelled" {
		t.Errorf("StopCancelled.String() = %q", got)
	}
}

func TestCheckDistributedWithFaults(t *testing.T) {
	prog, err := bolt.Parse(apiSample)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.CheckDistributed(context.Background(), bolt.DistOptions{
		Nodes:  3,
		Faults: "kill=1@1,drop=0.1,seed=7",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != bolt.Safe {
		t.Fatalf("verdict %v, want Safe (stop %v)", res.Verdict, res.StopReason)
	}
	if res.StopReason != bolt.StopRootAnswered {
		t.Fatalf("stop reason %v", res.StopReason)
	}
	// A malformed fault plan is an error, not a panic.
	if _, err := prog.CheckDistributed(context.Background(), bolt.DistOptions{Nodes: 2, Faults: "drop=2.0"}); err == nil {
		t.Fatal("invalid fault spec must be rejected")
	}
}

// TestObservabilityFacade: Options.TraceTo / CollectMetrics / PprofLabels
// flow through the public API on both single-machine engines and the
// simulated cluster; the trace validates and the metrics land on the
// result.
func TestObservabilityFacade(t *testing.T) {
	prog := bolt.MustParse(apiSample)
	for _, async := range []bool{false, true} {
		var buf bytes.Buffer
		res := prog.Check(bolt.Options{
			Threads:        4,
			Async:          async,
			Timeout:        30 * time.Second,
			TraceTo:        &buf,
			CollectMetrics: true,
			PprofLabels:    true,
		})
		if res.Verdict != bolt.Safe {
			t.Fatalf("async=%v: verdict = %v", async, res.Verdict)
		}
		if res.TraceErr != nil {
			t.Fatalf("async=%v: trace error %v", async, res.TraceErr)
		}
		spans, err := obs.ValidateChromeTrace(buf.Bytes())
		if err != nil {
			t.Fatalf("async=%v: invalid trace: %v", async, err)
		}
		if spans < 1 || spans != res.TraceSpans {
			t.Errorf("async=%v: spans = %d, TraceSpans = %d", async, spans, res.TraceSpans)
		}
		if res.Metrics == nil || res.Metrics["punch_invocations"] < 1 {
			t.Errorf("async=%v: metrics missing punch invocations: %v", async, res.Metrics)
		}
		if res.Metrics["makespan_ticks"] != res.VirtualTicks {
			t.Errorf("async=%v: makespan_ticks = %d, want %d", async, res.Metrics["makespan_ticks"], res.VirtualTicks)
		}
		if len(res.WorkerMetrics) != 4 {
			t.Errorf("async=%v: worker metrics = %d, want 4", async, len(res.WorkerMetrics))
		}
	}
}

// TestObservabilityOffByDefault: a plain run attaches nothing.
func TestObservabilityOffByDefault(t *testing.T) {
	prog := bolt.MustParse(apiSample)
	res := prog.Check(bolt.Options{Threads: 2, Timeout: 30 * time.Second})
	if res.Metrics != nil || res.WorkerMetrics != nil || res.TraceSpans != 0 {
		t.Errorf("observability fields populated without opting in: %+v", res.Metrics)
	}
}

// TestDistObservabilityFacade mirrors TestObservabilityFacade for the
// simulated cluster.
func TestDistObservabilityFacade(t *testing.T) {
	prog := bolt.MustParse(apiSample)
	var buf bytes.Buffer
	res, err := prog.CheckDistributed(context.Background(), bolt.DistOptions{
		Nodes:          2,
		ThreadsPerNode: 2,
		Timeout:        30 * time.Second,
		TraceTo:        &buf,
		CollectMetrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != bolt.Safe {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if res.TraceErr != nil {
		t.Fatal(res.TraceErr)
	}
	spans, err := obs.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	if spans != res.TraceSpans || spans < 1 {
		t.Errorf("spans = %d, TraceSpans = %d", spans, res.TraceSpans)
	}
	if res.Metrics == nil || res.Metrics["queries_spawned"] < 1 {
		t.Errorf("metrics missing: %v", res.Metrics)
	}
	if res.Metrics["workers"] != 4 {
		t.Errorf("workers = %d, want 4 (2 nodes x 2 threads)", res.Metrics["workers"])
	}
}

// TestIncrementalFacade drives the edit-recheck workflow end to end
// through the public API over a disk store: cold populate, verdict reuse
// on the unchanged program, and cone invalidation after an edit.
func TestIncrementalFacade(t *testing.T) {
	dir := t.TempDir()
	opts := bolt.Options{Threads: 4, Timeout: 30 * time.Second, StorePath: dir, Incremental: true}

	prog, err := bolt.Parse(apiSample)
	if err != nil {
		t.Fatal(err)
	}
	cold := prog.Check(opts)
	if cold.Verdict != bolt.Safe || cold.StoreErr != nil {
		t.Fatalf("cold: verdict %v, store err %v", cold.Verdict, cold.StoreErr)
	}
	if cold.ReusedVerdict || len(cold.EditedProcs) != 2 || cold.PersistedSummaries == 0 {
		t.Fatalf("cold: reused=%v edited=%v persisted=%d", cold.ReusedVerdict, cold.EditedProcs, cold.PersistedSummaries)
	}

	again := prog.Check(opts)
	if !again.ReusedVerdict || again.Verdict != bolt.Safe || again.StopReason != bolt.StopVerdictReused {
		t.Fatalf("unchanged: reused=%v verdict=%v stop=%v (err %v)", again.ReusedVerdict, again.Verdict, again.StopReason, again.StoreErr)
	}

	edited := strings.Replace(apiSample, "proc step { g = g + 1; }", "proc step { assume(1 > 0); g = g + 1; }", 1)
	prog2, err := bolt.Parse(edited)
	if err != nil {
		t.Fatal(err)
	}
	re := prog2.Check(opts)
	if re.ReusedVerdict {
		t.Fatal("edit to step reaches main, must not reuse the verdict")
	}
	if re.Verdict != bolt.Safe || re.StoreErr != nil {
		t.Fatalf("re-check: verdict %v, store err %v", re.Verdict, re.StoreErr)
	}
	if len(re.EditedProcs) != 1 || re.EditedProcs[0] != "step" {
		t.Fatalf("re-check: edited=%v, want [step]", re.EditedProcs)
	}
	if re.InvalidatedSummaries == 0 {
		t.Fatal("re-check invalidated nothing")
	}
}
