// Command boltcheck verifies a program against its assertions (or a
// custom reachability question) with the BOLT engine.
//
// Usage:
//
//	boltcheck [flags] program.bolt
//	boltcheck -proc main -pre 'true' -post 'g >= 10' program.bolt
//	boltcheck -dist 3 -faults 'kill=1@3,drop=0.2,seed=42' program.bolt
//	boltcheck -explain -prov-out prov.json program.bolt
//
// Exit status: 0 safe, 1 error reachable, 2 unknown, 3 usage/parsing.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync/atomic"
	"time"

	bolt "repro"
	"repro/internal/obs"
	"repro/internal/prov"
)

// osExit is swapped out by the exit-path regression tests; every exit
// after the observability side-cars start must go through the bundle's
// fatalf/exit funnels so the flight dump and watchdog shutdown run
// first (os.Exit skips deferred functions).
var osExit = os.Exit

func main() {
	var (
		analysis = flag.String("analysis", "maymust", "intraprocedural analysis: maymust|may|must")
		threads  = flag.Int("threads", 8, "maximum concurrent queries (1 = sequential)")
		async    = flag.Bool("async", false, "use the streaming work-stealing engine instead of bulk-synchronous MAP/REDUCE")
		timeout  = flag.Duration("timeout", 60*time.Second, "wall-clock budget (0 = none)")
		ticks    = flag.Int64("ticks", 0, "virtual-time budget (0 = none)")
		dist     = flag.Int("dist", 0, "run on a simulated cluster with this many nodes (0 = single-machine engine)")
		faults   = flag.String("faults", "", "fault plan for -dist: kill=N@R,drop=P,seed=S (all clauses optional)")
		coalesce = flag.Bool("coalesce", true, "coalesce spawns onto identical in-flight queries (ablation: -coalesce=false)")
		entCache = flag.Bool("entailcache", true, "cache solver entailment checks across queries (ablation: -entailcache=false)")
		storeDir = flag.String("store", "", "persistent summary store directory: warm-start from it and persist new summaries back")
		storeRst = flag.Bool("store-reset", false, "with -store, discard and recreate a store whose fingerprint does not match")
		incrFlag = flag.Bool("incr", false, "with -store, incremental re-check: diff the program against the store's manifest, invalidate the edited cone, and reuse the verdict when the edit cannot affect it")
		proc     = flag.String("proc", "", "procedure for a custom reachability question")
		pre      = flag.String("pre", "true", "precondition over globals (with -proc)")
		post     = flag.String("post", "", "postcondition over globals (with -proc)")
		stats    = flag.Bool("stats", false, "print engine statistics")
		wit      = flag.Bool("witness", false, "on Error Reachable, print a concrete counterexample")
		dot      = flag.Bool("dot", false, "print the control-flow graphs in Graphviz DOT format and exit")
		trace    = flag.String("trace", "", "write a Chrome trace-event JSON file of the run (open at ui.perfetto.dev)")
		traceJL  = flag.String("trace-jsonl", "", "stream the run's events to this file as JSON Lines (analyze with boltprof)")
		metrics  = flag.Bool("metrics", false, "collect and print the engine metrics registry")
		pprofA   = flag.String("pprof", "", "serve /debug/pprof, Prometheus /metrics and the /debug/bolt/{state,flight,health} introspection endpoints on this address for the run's duration (also enables pprof labels)")
		watchT   = flag.Duration("watchdog", 0, "sample live engine state at this tick and print a stall diagnosis when progress flatlines (0 = off)")
		watchS   = flag.Duration("watchdog-stall", obs.DefaultWatchdogStall, "with -watchdog, call the run stalled after this long without progress")
		flightD  = flag.String("flight-dump", "", "write the flight recorder's recent-event ring to this JSONL file when the run ends (and at each watchdog stall)")
		explain  = flag.Bool("explain", false, "record verdict provenance and print the dependency-cone report (which procedures and summaries the verdict rests on)")
		provOut  = flag.String("prov-out", "", "record verdict provenance and write it to this JSON file (inspect with boltprof -prov)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: boltcheck [flags] program.bolt")
		flag.PrintDefaults()
		os.Exit(3)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(3)
	}
	prog, err := bolt.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(3)
	}
	if *dot {
		fmt.Print(prog.Dot())
		os.Exit(0)
	}
	if *faults != "" && *dist <= 0 {
		fmt.Fprintln(os.Stderr, "boltcheck: -faults requires -dist")
		os.Exit(3)
	}
	if *incrFlag && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "boltcheck: -incr requires -store")
		os.Exit(3)
	}
	ob := newObsBundle(*pprofA, *watchT, *watchS, *flightD)
	var traceOut *os.File
	if *trace != "" {
		traceOut, err = os.Create(*trace)
		if err != nil {
			ob.fatalf("%v", err)
		}
		defer traceOut.Close()
	}
	var traceJLOut *os.File
	if *traceJL != "" {
		traceJLOut, err = os.Create(*traceJL)
		if err != nil {
			ob.fatalf("%v", err)
		}
		defer traceJLOut.Close()
	}
	if *dist > 0 {
		runDistributed(prog, *dist, *faults, *analysis, *threads, *timeout, *stats, traceOut, traceJLOut, *metrics, ob, !*coalesce, !*entCache, *storeDir, *storeRst, *incrFlag, *explain, *provOut)
		return
	}
	opts := bolt.Options{
		Threads:                *threads,
		Timeout:                *timeout,
		MaxVirtualTicks:        *ticks,
		Async:                  *async,
		FindWitness:            *wit,
		CollectProvenance:      *explain || *provOut != "",
		CollectMetrics:         *metrics,
		MetricsInto:            ob.reg,
		Inspect:                ob.insp,
		FlightRecorder:         ob.flight,
		PprofLabels:            *pprofA != "",
		DisableCoalesce:        !*coalesce,
		DisableEntailmentCache: !*entCache,
		StorePath:              *storeDir,
		StoreReset:             *storeRst,
		Incremental:            *incrFlag,
	}
	if traceOut != nil {
		opts.TraceTo = traceOut
	}
	if traceJLOut != nil {
		opts.TraceJSONLTo = traceJLOut
	}
	switch *analysis {
	case "maymust":
		opts.Analysis = bolt.MayMust
	case "may":
		opts.Analysis = bolt.May
	case "must":
		opts.Analysis = bolt.Must
	default:
		ob.fatalf("unknown analysis %q", *analysis)
	}

	var res bolt.Result
	if *proc != "" {
		res, err = prog.CheckReach(*proc, *pre, *post, opts)
		if err != nil {
			ob.fatalf("%v", err)
		}
	} else {
		res = prog.Check(opts)
	}
	ob.setProv(res.Provenance)
	if err := reportStore(*storeDir, res.WarmSummaries, res.PersistedSummaries, res.StoreErr); err != nil {
		ob.fatalf("%v", err)
	}
	reportIncr(*incrFlag, res.EditedProcs, res.InvalidatedSummaries, res.SurvivingSummaries, res.ReusedVerdict)

	fmt.Println(res.Verdict)
	if res.Verdict == bolt.Unknown || *stats {
		fmt.Printf("stop reason:  %s\n", res.StopReason)
	}
	if res.Witness != nil {
		fmt.Print(res.Witness.Text)
	}
	if *stats {
		fmt.Printf("queries:      %d\n", res.TotalQueries)
		fmt.Printf("peak ready:   %d\n", res.PeakReady)
		fmt.Printf("iterations:   %d\n", res.Iterations)
		fmt.Printf("virtual time: %d ticks\n", res.VirtualTicks)
		fmt.Printf("wall time:    %v\n", res.WallTime)
		fmt.Printf("coalesced:    %d\n", res.CoalesceHits)
		printSolverStats(res.Solver)
	}
	if *metrics {
		printMetrics(res.Metrics, res.WorkerMetrics)
	}
	if err := reportProv(res.Provenance, *explain, *provOut); err != nil {
		ob.fatalf("%v", err)
	}
	if err := reportTrace(*trace, *traceJL, res.TraceSpans, res.TraceEvents, res.TraceErr); err != nil {
		ob.fatalf("%v", err)
	}
	ob.exit(verdictCode(res.Verdict))
}

// reportProv prints the -explain dependency-cone report and writes the
// -prov-out JSON record.
func reportProv(p *prov.Provenance, explain bool, provOut string) error {
	if p == nil {
		return nil
	}
	if explain {
		fmt.Print(p.Explain())
	}
	if provOut != "" {
		f, err := os.Create(provOut)
		if err != nil {
			return fmt.Errorf("boltcheck: provenance: %w", err)
		}
		err = p.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("boltcheck: provenance: %w", err)
		}
		fmt.Fprintf(os.Stderr, "prov: wrote %s (%d procedures, %d summaries); inspect with boltprof -prov %s\n",
			provOut, len(p.Procedures), len(p.Summaries), provOut)
	}
	return nil
}

// obsBundle holds the live-introspection handles one boltcheck run
// shares between the engine, the debug HTTP server, and the watchdog.
// The zero bundle (no -pprof/-watchdog/-flight-dump) disables all of it.
type obsBundle struct {
	reg    *obs.Metrics
	insp   *bolt.Inspector
	flight *obs.FlightRecorder
	wd     *obs.Watchdog
	dump   string
	// prov holds the finished run's provenance record for
	// /debug/bolt/prov (nil until a -explain/-prov-out run completes).
	prov atomic.Pointer[prov.Provenance]
}

// setProv publishes the run's provenance record to /debug/bolt/prov.
func (ob *obsBundle) setProv(p *prov.Provenance) {
	if p != nil {
		ob.prov.Store(p)
	}
}

// provDoc is the /debug/bolt/prov source: the latest record, or nil.
func (ob *obsBundle) provDoc() any {
	if p := ob.prov.Load(); p != nil {
		return p
	}
	return nil
}

// fatalf reports a usage/environment failure and exits 3 through the
// bundle's shutdown path, so the watchdog stops and the final flight
// dump is written even on error exits.
func (ob *obsBundle) fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	ob.exit(3)
}

// exit runs the bundle's shutdown and leaves with code. A failed final
// flight dump turns a success exit into 3 (the dump was asked for and
// not delivered) but never masks a non-zero code.
func (ob *obsBundle) exit(code int) {
	if !ob.finish() && code == 0 {
		code = 3
	}
	osExit(code)
}

// newObsBundle builds (and starts) the observability side-cars the
// flags ask for: the debug HTTP server on pprofAddr, a watchdog at the
// given tick, and a flight recorder whenever any consumer needs one.
func newObsBundle(pprofAddr string, tick, stall time.Duration, dump string) *obsBundle {
	ob := &obsBundle{dump: dump}
	if pprofAddr == "" && tick <= 0 && dump == "" {
		return ob
	}
	ob.insp = bolt.NewInspector()
	ob.flight = obs.NewFlightRecorder(0)
	if pprofAddr != "" {
		// The run accumulates into a registry the HTTP server also
		// renders at /metrics, so Prometheus scrapes see the live run.
		ob.reg = obs.NewMetrics()
	}
	if tick > 0 {
		ob.wd = obs.NewWatchdog(obs.WatchdogConfig{
			Probe:      ob.insp.Probe(),
			Flight:     ob.flight,
			Tick:       tick,
			StallAfter: stall,
			OnStall: func(r obs.StallReport) {
				fmt.Fprintln(os.Stderr, r.String())
				if ob.dump != "" {
					if err := ob.writeDump(); err != nil {
						// A failed mid-run dump is reported but must not
						// kill the run being diagnosed.
						fmt.Fprintf(os.Stderr, "boltcheck: flight dump: %v\n", err)
					}
				}
			},
		})
		ob.wd.Start()
	}
	if pprofAddr != "" {
		ds := bolt.DebugState(ob.reg, ob.insp, ob.flight, ob.wd)
		ds.Prov = ob.provDoc
		addr, err := obs.StartDebugServer(pprofAddr, ds)
		if err != nil {
			ob.fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "debug: serving /debug/pprof, /metrics and /debug/bolt/{state,flight,health,prov} on http://%s\n", addr)
	}
	return ob
}

// writeDump writes the flight ring to the -flight-dump path, replacing
// any earlier dump (later is better: more of the interesting tail).
func (ob *obsBundle) writeDump() error {
	f, err := os.Create(ob.dump)
	if err != nil {
		return err
	}
	n, err := ob.flight.WriteJSONL(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "flight: wrote %s (%d events, %d dropped); report with boltprof -flight %s\n",
		ob.dump, n, ob.flight.Dropped(), ob.dump)
	return nil
}

// finish stops the watchdog and writes the final flight dump, reporting
// whether everything the flags asked for was delivered. Every exit path
// (success, verdict, usage failure) funnels through here via exit /
// fatalf: os.Exit skips deferred functions, so nothing may bypass it.
func (ob *obsBundle) finish() bool {
	ob.wd.Stop()
	if ob.dump != "" {
		if err := ob.writeDump(); err != nil {
			fmt.Fprintf(os.Stderr, "boltcheck: flight dump: %v\n", err)
			return false
		}
	}
	return true
}

// printSolverStats renders the solver's hot-path accounting: the
// learning-DPLL loop, theory-check volume, and the two memo layers
// (entailment cache and hash-consed construction).
func printSolverStats(s bolt.SolverStats) {
	fmt.Printf("sat calls:    %d\n", s.SatCalls)
	fmt.Printf("theory checks: %d\n", s.TheoryChecks)
	fmt.Printf("dpll conflicts: %d (learned %d, propagations %d)\n",
		s.DPLLConflicts, s.LearnedClauses, s.Propagations)
	fmt.Printf("entail cache: %d hits / %d misses\n", s.EntailCacheHits, s.EntailCacheMisses)
	fmt.Printf("hashcons hits: %d\n", s.HashConsHits)
}

// printMetrics renders the flattened registry sorted by key, then the
// per-worker ledger with a utilization column.
func printMetrics(m map[string]int64, workers []bolt.WorkerMetric) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println("metrics:")
	for _, k := range keys {
		fmt.Printf("  %-28s %12d\n", k, m[k])
	}
	makespan := m["makespan_ticks"]
	for _, w := range workers {
		util := 0.0
		if makespan > 0 {
			util = float64(w.BusyTicks) / float64(makespan) * 100
		}
		fmt.Printf("  worker %-3d punches %-8d busy %-10d steals %-6d util %5.1f%%\n",
			w.Worker, w.Punches, w.BusyTicks, w.Steals, util)
	}
}

// reportStore confirms the -store warm-start/persist traffic. A store
// error (stale fingerprint, unreadable segment, failed flush) is a
// usage/environment problem, not a verdict: the caller routes the
// returned error through the bundle's exit-3 funnel.
func reportStore(dir string, warm, persisted int, err error) error {
	if dir == "" {
		return nil
	}
	if err != nil {
		return fmt.Errorf("boltcheck: summary store %s: %w", dir, err)
	}
	fmt.Fprintf(os.Stderr, "store: loaded %d summaries, persisted %d new (%s)\n", warm, persisted, dir)
	return nil
}

// reportIncr confirms the -incr edit-diff accounting: what changed,
// what was invalidated, what survived, and whether the persisted
// verdict answered the question without a run.
func reportIncr(on bool, edited []string, invalidated, surviving int, reused bool) {
	if !on {
		return
	}
	fmt.Fprintf(os.Stderr, "incr: %d edited %v, invalidated %d summaries, %d surviving", len(edited), edited, invalidated, surviving)
	if reused {
		fmt.Fprint(os.Stderr, ", verdict reused (no re-run)")
	}
	fmt.Fprintln(os.Stderr)
}

// reportTrace confirms the -trace / -trace-jsonl outputs; a failed
// trace write is returned for the caller's exit-3 funnel.
func reportTrace(chromePath, jsonlPath string, spans int, events int64, err error) error {
	if chromePath == "" && jsonlPath == "" {
		return nil
	}
	if err != nil {
		return fmt.Errorf("boltcheck: writing trace: %w", err)
	}
	if chromePath != "" {
		fmt.Fprintf(os.Stderr, "trace: wrote %s (%d punch spans); open at https://ui.perfetto.dev\n", chromePath, spans)
	}
	if jsonlPath != "" {
		fmt.Fprintf(os.Stderr, "trace: wrote %s (%d events); analyze with boltprof -input %s\n", jsonlPath, events, jsonlPath)
	}
	return nil
}

// runDistributed verifies the whole-program assertion question on the
// simulated cluster, optionally under an injected fault plan.
func runDistributed(prog *bolt.Program, nodes int, faults, analysis string, threads int, timeout time.Duration, stats bool, traceOut, traceJLOut *os.File, metrics bool, ob *obsBundle, noCoalesce, noEntCache bool, storeDir string, storeReset, incremental bool, explain bool, provOut string) {
	opts := bolt.DistOptions{
		Nodes:                  nodes,
		ThreadsPerNode:         threads,
		Timeout:                timeout,
		Faults:                 faults,
		CollectProvenance:      explain || provOut != "",
		CollectMetrics:         metrics,
		MetricsInto:            ob.reg,
		Inspect:                ob.insp,
		FlightRecorder:         ob.flight,
		PprofLabels:            ob.reg != nil,
		DisableCoalesce:        noCoalesce,
		DisableEntailmentCache: noEntCache,
		StorePath:              storeDir,
		StoreReset:             storeReset,
		Incremental:            incremental,
	}
	tracePath := ""
	if traceOut != nil {
		opts.TraceTo = traceOut
		tracePath = traceOut.Name()
	}
	traceJLPath := ""
	if traceJLOut != nil {
		opts.TraceJSONLTo = traceJLOut
		traceJLPath = traceJLOut.Name()
	}
	switch analysis {
	case "maymust":
		opts.Analysis = bolt.MayMust
	case "may":
		opts.Analysis = bolt.May
	case "must":
		opts.Analysis = bolt.Must
	default:
		ob.fatalf("unknown analysis %q", analysis)
	}
	res, err := prog.CheckDistributed(context.Background(), opts)
	if err != nil {
		ob.fatalf("%v", err)
	}
	ob.setProv(res.Provenance)
	if err := reportStore(storeDir, res.WarmSummaries, res.PersistedSummaries, res.StoreErr); err != nil {
		ob.fatalf("%v", err)
	}
	reportIncr(incremental, res.EditedProcs, res.InvalidatedSummaries, res.SurvivingSummaries, res.ReusedVerdict)
	fmt.Println(res.Verdict)
	fmt.Printf("stop reason:  %s\n", res.StopReason)
	if stats {
		fmt.Printf("queries:      %d\n", res.TotalQueries)
		fmt.Printf("rounds:       %d\n", res.Rounds)
		fmt.Printf("virtual time: %d ticks\n", res.VirtualTicks)
		fmt.Printf("wall time:    %v\n", res.WallTime)
		fmt.Printf("gossip:       %d exchanges, %d deliveries dropped\n", res.SyncExchanges, res.DroppedDeliveries)
		fmt.Printf("peak live:    %v per node\n", res.PerNodePeakLive)
		fmt.Printf("coalesced:    %d\n", res.CoalesceHits)
		if len(res.KilledNodes) > 0 {
			fmt.Printf("faults:       killed nodes %v, %d queries re-routed, %d summaries recovered\n",
				res.KilledNodes, res.ReroutedQueries, res.RecoveredSummaries)
		}
	}
	if metrics {
		printMetrics(res.Metrics, res.WorkerMetrics)
	}
	if err := reportProv(res.Provenance, explain, provOut); err != nil {
		ob.fatalf("%v", err)
	}
	if err := reportTrace(tracePath, traceJLPath, res.TraceSpans, res.TraceEvents, res.TraceErr); err != nil {
		ob.fatalf("%v", err)
	}
	ob.exit(verdictCode(res.Verdict))
}

func verdictCode(v bolt.Verdict) int {
	switch v {
	case bolt.Safe:
		return 0
	case bolt.ErrorReachable:
		return 1
	default:
		return 2
	}
}
