package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

type exitCall struct{ code int }

// captureExit reroutes osExit into a panic the test can recover, so the
// funnel's "never returns" behavior is testable in-process.
func captureExit(t *testing.T) {
	t.Helper()
	old := osExit
	osExit = func(code int) { panic(exitCall{code}) }
	t.Cleanup(func() { osExit = old })
}

// expectExit runs f, which must leave through osExit, and returns the
// exit code it carried.
func expectExit(t *testing.T, f func()) int {
	t.Helper()
	code := -1
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("expected an exit, got a normal return")
			}
			ec, ok := r.(exitCall)
			if !ok {
				panic(r)
			}
			code = ec.code
		}()
		f()
	}()
	return code
}

// TestStoreErrorExitRunsFinish locks the satellite contract for the
// store-error exit path: reportStore surfaces the failure as an error,
// and the bundle's fatalf funnel writes the final flight dump (i.e.
// runs finish) before exiting 3 — os.Exit skips deferred functions, so
// an exit path that bypasses the funnel silently loses the dump.
func TestStoreErrorExitRunsFinish(t *testing.T) {
	captureExit(t)
	dump := filepath.Join(t.TempDir(), "flight.jsonl")
	ob := &obsBundle{dump: dump, flight: obs.NewFlightRecorder(0)}

	err := reportStore(t.TempDir(), 0, 0, errors.New("segment checksum mismatch"))
	if err == nil {
		t.Fatal("reportStore must return the store failure")
	}
	if !strings.Contains(err.Error(), "summary store") {
		t.Fatalf("store error lacks context: %v", err)
	}

	code := expectExit(t, func() { ob.fatalf("%v", err) })
	if code != 3 {
		t.Fatalf("store error must exit 3, got %d", code)
	}
	if _, err := os.Stat(dump); err != nil {
		t.Fatalf("flight dump was not written before the error exit: %v", err)
	}
}

// TestVerdictExitRunsFinish: the success path also funnels through
// finish, and a deliverable dump keeps the verdict's exit code.
func TestVerdictExitRunsFinish(t *testing.T) {
	captureExit(t)
	dump := filepath.Join(t.TempDir(), "flight.jsonl")
	ob := &obsBundle{dump: dump, flight: obs.NewFlightRecorder(0)}

	if code := expectExit(t, func() { ob.exit(0) }); code != 0 {
		t.Fatalf("safe verdict must keep exit 0, got %d", code)
	}
	if _, err := os.Stat(dump); err != nil {
		t.Fatalf("flight dump missing after verdict exit: %v", err)
	}
}

// TestFailedDumpTurnsSuccessIntoError: a dump the flags asked for but
// the bundle could not deliver must not exit 0.
func TestFailedDumpTurnsSuccessIntoError(t *testing.T) {
	captureExit(t)
	ob := &obsBundle{
		dump:   filepath.Join(t.TempDir(), "no-such-dir", "flight.jsonl"),
		flight: obs.NewFlightRecorder(0),
	}
	if code := expectExit(t, func() { ob.exit(0) }); code != 3 {
		t.Fatalf("undeliverable flight dump must exit 3, got %d", code)
	}
	// A real verdict is never masked by the dump failure.
	ob2 := &obsBundle{
		dump:   filepath.Join(t.TempDir(), "no-such-dir", "flight.jsonl"),
		flight: obs.NewFlightRecorder(0),
	}
	if code := expectExit(t, func() { ob2.exit(1) }); code != 1 {
		t.Fatalf("error-reachable exit must stay 1, got %d", code)
	}
}
