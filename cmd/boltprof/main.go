// Command boltprof analyzes a recorded run of the BOLT engine: it
// rebuilds the query-causality DAG from a JSON Lines event trace and
// reports the critical path, work/span bounds, a what-if scalability
// model, and blocking/straggler attribution.
//
// Usage:
//
//	boltcheck -async -trace-jsonl trace.jsonl program.bolt
//	boltprof -input trace.jsonl -report text
//	boltprof -flight flight.jsonl
//	boltprof -prov prov.json
//	boltprof -selftest
//
// -selftest replays the testdata corpus through all three engines
// (bulk-synchronous, streaming, distributed), piping each run's event
// stream through the JSONL encoding and asserting the analyzer's
// invariants on the result. Exit status: 0 ok, 1 invariant violation,
// 2 usage/IO error.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	bolt "repro"
	"repro/internal/obs/analyze"
)

func main() {
	var (
		input    = flag.String("input", "", "JSON Lines event trace to analyze (from boltcheck -trace-jsonl)")
		report   = flag.String("report", "text", "report format: text|json")
		selftest = flag.Bool("selftest", false, "replay the corpus through all three engines and validate analyzer invariants")
		corpus   = flag.String("corpus", "testdata/corpus", "corpus directory for -selftest")
		flight   = flag.String("flight", "", "flight-recorder dump to report on (from boltcheck -flight-dump or /debug/bolt/flight)")
		provIn   = flag.String("prov", "", "provenance record to report on (from boltcheck -prov-out or /debug/bolt/prov): cone-size distribution and hot-summary fan-in")
	)
	flag.Parse()

	if *selftest {
		os.Exit(runSelftest(*corpus))
	}
	if *flight != "" {
		os.Exit(runFlight(*flight, os.Stdout))
	}
	if *provIn != "" {
		os.Exit(runProv(*provIn, os.Stdout))
	}
	if *input == "" {
		fmt.Fprintln(os.Stderr, "usage: boltprof -input trace.jsonl [-report text|json], boltprof -flight dump.jsonl, or boltprof -selftest")
		flag.PrintDefaults()
		os.Exit(2)
	}
	events, err := analyze.LoadJSONLFile(*input)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	rep, err := analyze.Analyze(events)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	switch *report {
	case "text":
		err = rep.WriteText(os.Stdout)
	case "json":
		err = rep.WriteJSON(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "boltprof: unknown report format %q (want text or json)\n", *report)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

// runSelftest replays every corpus program through the three engines,
// round-trips each event stream through the JSONL encoding, and checks
// the analyzer's structural invariants. Returns the process exit code.
func runSelftest(corpusDir string) int {
	paths, err := filepath.Glob(filepath.Join(corpusDir, "*.bolt"))
	if err != nil || len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "boltprof: no corpus programs in %s\n", corpusDir)
		return 2
	}
	engines := []struct {
		name string
		run  func(*bolt.Program, *bytes.Buffer) error
	}{
		{"barrier", func(p *bolt.Program, buf *bytes.Buffer) error {
			res := p.Check(bolt.Options{Threads: 8, Timeout: 30 * time.Second, TraceJSONLTo: buf})
			return res.TraceErr
		}},
		{"streaming", func(p *bolt.Program, buf *bytes.Buffer) error {
			res := p.Check(bolt.Options{Threads: 8, Async: true, Timeout: 30 * time.Second, TraceJSONLTo: buf})
			return res.TraceErr
		}},
		{"dist", func(p *bolt.Program, buf *bytes.Buffer) error {
			res, err := p.CheckDistributed(context.Background(), bolt.DistOptions{
				Nodes: 3, ThreadsPerNode: 4, Timeout: 30 * time.Second, TraceJSONLTo: buf,
			})
			if err != nil {
				return err
			}
			return res.TraceErr
		}},
	}
	runs, failures := 0, 0
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		prog, err := bolt.Parse(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "boltprof: parsing %s: %v\n", path, err)
			return 2
		}
		for _, eng := range engines {
			runs++
			var buf bytes.Buffer
			if err := eng.run(prog, &buf); err != nil {
				fmt.Fprintf(os.Stderr, "FAIL %s [%s]: run: %v\n", filepath.Base(path), eng.name, err)
				failures++
				continue
			}
			if err := validateTrace(&buf); err != nil {
				fmt.Fprintf(os.Stderr, "FAIL %s [%s]: %v\n", filepath.Base(path), eng.name, err)
				failures++
				continue
			}
			fmt.Printf("ok   %s [%s]\n", filepath.Base(path), eng.name)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "boltprof selftest: %d/%d runs FAILED\n", failures, runs)
		return 1
	}
	fmt.Printf("boltprof selftest: %d runs ok (%d programs x %d engines)\n", runs, len(paths), len(engines))
	return 0
}

// validateTrace loads one run's JSONL stream and asserts the analyzer's
// structural invariants on the resulting report.
func validateTrace(buf *bytes.Buffer) error {
	events, err := analyze.LoadJSONL(buf)
	if err != nil {
		return err
	}
	rep, err := analyze.Analyze(events)
	if err != nil {
		return err
	}
	if rep.Spans == 0 || rep.WorkTicks <= 0 {
		return fmt.Errorf("no punch work in trace (%d spans, work %d)", rep.Spans, rep.WorkTicks)
	}
	if rep.SpanTicks <= 0 || rep.SpanTicks > rep.WorkTicks {
		return fmt.Errorf("span %d outside (0, work=%d]", rep.SpanTicks, rep.WorkTicks)
	}
	if rep.CriticalPathTicks != rep.SpanTicks {
		return fmt.Errorf("critical path %d != span %d", rep.CriticalPathTicks, rep.SpanTicks)
	}
	var pathCost int64
	for _, st := range rep.CriticalPath {
		pathCost += st.Cost
	}
	if pathCost != rep.SpanTicks {
		return fmt.Errorf("critical path steps sum to %d, span is %d", pathCost, rep.SpanTicks)
	}
	for _, row := range rep.WhatIf {
		if row.LowerTicks > row.UpperTicks {
			return fmt.Errorf("what-if at %d workers: lower %d > upper %d",
				row.Workers, row.LowerTicks, row.UpperTicks)
		}
		if row.LowerTicks < rep.SpanTicks {
			return fmt.Errorf("what-if at %d workers: lower %d below span %d",
				row.Workers, row.LowerTicks, rep.SpanTicks)
		}
	}
	return nil
}
