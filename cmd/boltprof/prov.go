// The -prov report: offline analysis of a provenance record written by
// boltcheck -prov-out (or scraped from /debug/bolt/prov). Where -input
// explains where the time went, -prov explains what the verdict rests
// on: the invalidation-cone size distribution (how much re-checking an
// edit to each procedure would trigger) and the hot summaries by
// fan-in (the facts most of the analysis leaned on).

package main

import (
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/prov"
)

// runProv loads a provenance JSON record and writes the cone/fan-in
// report. Exit codes follow the main command: 0 ok, 2 usage/IO error.
func runProv(path string, w io.Writer) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	p, err := prov.ReadJSON(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "boltprof: %s: %v\n", path, err)
		return 2
	}
	if err := writeProvReport(w, p); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	return 0
}

// writeProvReport renders the provenance analysis: header, cone-size
// distribution with the largest cones called out, and hot summaries.
func writeProvReport(w io.Writer, p *prov.Provenance) error {
	fmt.Fprintf(w, "provenance: verdict %q for root %s\n", p.Verdict, p.Root)
	fmt.Fprintf(w, "cone: %d procedure(s), depth %d, %d query record(s)\n",
		len(p.Procedures), p.Depth, p.Queries)
	fmt.Fprintf(w, "traffic: %d summary read(s), %d write(s), %d proc scan(s), %d coalesce reuse\n",
		p.SummaryReads, p.SummaryWrites, p.ProcReads, p.CoalesceReuse)
	if p.WarmLoaded > 0 {
		fmt.Fprintf(w, "warm: %d of %d loaded summaries read\n", p.WarmRead, p.WarmLoaded)
	}

	sizes := p.ConeSizes()
	if len(sizes) > 0 {
		vals := make([]int, len(sizes))
		for i, cs := range sizes {
			vals[i] = cs.Size
		}
		sort.Ints(vals)
		fmt.Fprintf(w, "\ninvalidation cones (%d procedures):\n", len(sizes))
		fmt.Fprintf(w, "  size min/median/p90/max: %d / %d / %d / %d\n",
			vals[0], vals[len(vals)/2], vals[(len(vals)*9)/10], vals[len(vals)-1])
		// Largest blast radii first: the procedures whose edit costs the
		// most re-checking.
		bysize := append([]prov.ConeSize(nil), sizes...)
		sort.SliceStable(bysize, func(i, j int) bool {
			if bysize[i].Size != bysize[j].Size {
				return bysize[i].Size > bysize[j].Size
			}
			return bysize[i].Proc < bysize[j].Proc
		})
		top := bysize
		if len(top) > 10 {
			top = top[:10]
		}
		fmt.Fprintf(w, "  largest cones:\n")
		for _, cs := range top {
			c := p.Cone(cs.Proc)
			root := ""
			if c.RootAffected {
				root = "  [verdict affected]"
			}
			fmt.Fprintf(w, "    %-30s %4d procs %4d summaries%s\n",
				cs.Proc, cs.Size, c.Summaries, root)
		}
	}

	type fanIn struct {
		proc    string
		readers int
		reads   int64
	}
	var hot []fanIn
	for _, s := range p.Summaries {
		if s.Reads > 0 {
			hot = append(hot, fanIn{s.Proc + " [" + s.Kind + "] " + s.Pre + " => " + s.Post, s.Readers, s.Reads})
		}
	}
	sort.SliceStable(hot, func(i, j int) bool {
		if hot[i].readers != hot[j].readers {
			return hot[i].readers > hot[j].readers
		}
		if hot[i].reads != hot[j].reads {
			return hot[i].reads > hot[j].reads
		}
		return hot[i].proc < hot[j].proc
	})
	if len(hot) > 0 {
		fmt.Fprintf(w, "\nhot summaries by fan-in (distinct reading procedures):\n")
		n := len(hot)
		if n > 10 {
			n = 10
		}
		for _, h := range hot[:n] {
			fmt.Fprintf(w, "  %3d readers %5d reads  %s\n", h.readers, h.reads, h.proc)
		}
	}
	return nil
}
