package main

import (
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// runFlight reports on a flight-recorder dump (boltcheck -flight-dump,
// or /debug/bolt/flight). Flight dumps use the same JSONL wire form as
// full traces but hold only the newest events of a bounded ring, so
// unlike -input analysis the report must tolerate truncation: punch
// ends without a start, done queries whose spawn was dropped. Returns
// the process exit code.
func runFlight(path string, w io.Writer) int {
	events, err := analyze.LoadJSONLFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if len(events) == 0 {
		fmt.Fprintf(w, "flight %s: empty recording\n", path)
		return 0
	}

	byType := map[obs.EventType]int{}
	open := map[int64]obs.Event{} // query -> unmatched EvPunchStart
	orphanEnds := 0               // EvPunchEnd whose start fell off the ring
	var cost int64
	for _, ev := range events {
		byType[ev.Type]++
		switch ev.Type {
		case obs.EvPunchStart:
			open[int64(ev.Query)] = ev
		case obs.EvPunchEnd:
			if _, ok := open[int64(ev.Query)]; ok {
				delete(open, int64(ev.Query))
			} else {
				orphanEnds++
			}
			cost += ev.Cost
		}
	}

	first, last := events[0], events[len(events)-1]
	fmt.Fprintf(w, "flight %s: %d events\n", path, len(events))
	fmt.Fprintf(w, "  span: vtime %d..%d (%d ticks), wall %v..%v (%v)\n",
		first.VTime, last.VTime, last.VTime-first.VTime,
		first.Wall, last.Wall, last.Wall-first.Wall)
	fmt.Fprintf(w, "  punch cost in window: %d ticks\n", cost)

	types := make([]obs.EventType, 0, len(byType))
	for t := range byType {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	fmt.Fprintln(w, "  by type:")
	for _, t := range types {
		fmt.Fprintf(w, "    %-12s %d\n", t, byType[t])
	}

	if len(open) > 0 {
		// Punches still in flight when the ring was dumped — on a
		// stalled run these are the prime suspects.
		stuck := make([]obs.Event, 0, len(open))
		for _, ev := range open {
			stuck = append(stuck, ev)
		}
		sort.Slice(stuck, func(i, j int) bool { return stuck[i].VTime < stuck[j].VTime })
		fmt.Fprintf(w, "  open punches at dump time: %d\n", len(open))
		for _, ev := range stuck {
			fmt.Fprintf(w, "    q%-6d %-20s worker %d node %d since vtime %d (wall %v)\n",
				ev.Query, ev.Proc, ev.Worker, ev.Node, ev.VTime, ev.Wall)
		}
	}
	if orphanEnds > 0 {
		fmt.Fprintf(w, "  punch ends with start truncated off the ring: %d\n", orphanEnds)
	}

	tail := events
	if len(tail) > 10 {
		tail = tail[len(tail)-10:]
	}
	fmt.Fprintf(w, "  last %d events:\n", len(tail))
	for _, ev := range tail {
		fmt.Fprintf(w, "    vt=%-8d %-12s q%-6d %-20s worker %d node %d\n",
			ev.VTime, ev.Type, ev.Query, ev.Proc, ev.Worker, ev.Node)
	}
	return 0
}
