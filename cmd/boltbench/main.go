// Command boltbench regenerates every table and figure of the paper's
// evaluation (§5) on the synthetic driver suite.
//
// Usage:
//
//	boltbench -all
//	boltbench -table 1   (also 2, 3, 4)
//	boltbench -fig 3     (also 6, 7)
//
// Timing is virtual: see internal/harness for the cost model.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	bolt "repro"
	"repro/internal/harness"
	"repro/internal/obs"
)

func main() {
	var (
		table     = flag.Int("table", 0, "regenerate table 1..4")
		fig       = flag.Int("fig", 0, "regenerate figure 3, 6 or 7")
		all       = flag.Bool("all", false, "regenerate everything")
		maxChecks = flag.Int("suite", 110, "suite subset size for table 2 (0 = all 495)")
		hard      = flag.Int64("hard", 200000, "sequential ticks for a check to count as hard (table 2)")
		wall      = flag.Duration("wall", 120*time.Second, "wall-clock safety budget per run")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget for the whole bench; expiry cancels in-flight checks (0 = none)")
		async     = flag.Bool("async", false, "run every check with the streaming work-stealing engine")
		coalesce  = flag.Bool("coalesce", true, "coalesce spawns onto identical in-flight queries (ablation: -coalesce=false)")
		entCache  = flag.Bool("entailcache", true, "cache solver entailment checks across queries (ablation: -entailcache=false)")
		snapshot  = flag.String("snapshot", "", "write a streaming-engine perf snapshot (makespan, speedup, metrics) to this JSON file, e.g. BENCH_streaming.json")
		snapTh    = flag.Int("snapshot-threads", 32, "streaming pool size for -snapshot")
		compare   = flag.String("compare", "", "collect a fresh streaming snapshot and diff it against this committed baseline; exit 1 on regression (the bench gate)")
		warm      = flag.Bool("warm", false, "run the warm-start experiment: each check cold into a persistent summary store, then warm from it")
		warmDir   = flag.String("warm-store", "", "store directory for -warm (default: a fresh temp dir, removed afterwards)")
		warmTh    = flag.Int("warm-threads", 8, "thread count for -warm runs")
		incrB     = flag.Bool("incr", false, "run the incremental re-analysis experiment: per check, mutate every procedure once and re-check incrementally vs from scratch")
		incrTh    = flag.Int("incr-threads", 8, "thread count for -incr runs")
		pprofA    = flag.String("pprof", "", "serve /debug/pprof, /metrics and /debug/bolt/{state,flight,health} on this address for the bench's duration")
	)
	flag.Parse()
	// The bench loop runs checks back to back, so one shared registry,
	// inspector and flight ring observe the whole suite: /metrics
	// accumulates across runs, /debug/bolt/state shows whichever check
	// is in flight right now.
	var liveReg *obs.Metrics
	var insp *bolt.Inspector
	var flightTr obs.Tracer // interface-typed only when a recorder exists (typed-nil would defeat engine nil checks)
	if *pprofA != "" {
		liveReg = obs.NewMetrics()
		insp = bolt.NewInspector()
		flight := obs.NewFlightRecorder(0)
		flightTr = flight
		addr, err := obs.StartDebugServer(*pprofA, bolt.DebugState(liveReg, insp, flight, nil))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "debug: serving /debug/pprof, /metrics and /debug/bolt/{state,flight,health} on http://%s\n", addr)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := harness.Options{
		WallBudget:             *wall,
		Async:                  *async,
		Ctx:                    ctx,
		DisableCoalesce:        !*coalesce,
		DisableEntailmentCache: !*entCache,
		MetricsInto:            liveReg,
		Probe:                  insp.Probe(),
		Tracer:                 flightTr,
	}

	did := false
	run := func(n int, f func()) {
		if *all || *table == n {
			f()
			did = true
			fmt.Println()
		}
	}
	runFig := func(n int, f func()) {
		if *all || *fig == n {
			f()
			did = true
			fmt.Println()
		}
	}

	var table1Rows []harness.Table1Row
	run(1, func() {
		table1Rows = harness.Table1(opts)
		harness.WriteTable1(os.Stdout, table1Rows)
	})
	run(2, func() {
		r := harness.Table2(opts, 64, *hard, *maxChecks)
		harness.WriteTable2(os.Stdout, r)
	})
	run(3, func() {
		rows, budget := harness.Table3(opts)
		harness.WriteTable3(os.Stdout, rows, budget)
	})
	run(4, func() {
		harness.WriteTable4(os.Stdout, harness.Table4(opts))
	})
	runFig(3, func() {
		s := harness.Fig3(opts)
		harness.PlotSeries(os.Stdout, "Figure 3: Ready sub-queries over virtual time (sequential)", []harness.Series{s}, 72, 16)
		harness.WriteSeries(os.Stdout, "series data:", []harness.Series{s})
	})
	runFig(6, func() {
		if table1Rows == nil {
			table1Rows = harness.Table1(opts)
		}
		series := harness.Fig6(table1Rows)
		harness.PlotSeries(os.Stdout, "Figure 6: speedup (x100) vs threads", series, 72, 16)
		harness.WriteSeries(os.Stdout, "series data:", series)
	})
	runFig(7, func() {
		series := harness.Fig7(opts)
		harness.PlotSeries(os.Stdout, "Figure 7: queries processed in parallel over virtual time", series, 72, 16)
		harness.WriteSeries(os.Stdout, "series data:", series)
	})
	if *snapshot != "" {
		bench := harness.CollectStreaming(opts, *snapTh, harness.Table1Checks())
		f, err := os.Create(*snapshot)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := harness.WriteStreamingBench(f, bench); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "snapshot: wrote %s (%d checks, total speedup %.2fx at %d threads)\n",
			*snapshot, len(bench.Checks), bench.TotalSpeedup, *snapTh)
		for _, c := range bench.Checks {
			fmt.Printf("%-45s %10d -> %-10d %6.2fx  steals %d\n",
				c.Check, c.SeqTicks, c.ParTicks, c.Speedup, c.Metrics["steals_succeeded"])
		}
		did = true
	}
	if *warm {
		dir := *warmDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "boltwarm")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		rows := harness.WarmVsCold(opts, *warmTh, harness.Table1Checks(), dir)
		harness.WriteWarmTable(os.Stdout, *warmTh, rows)
		for _, r := range rows {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "boltbench: warm-start store error on %s: %v\n", r.Check.ID(), r.Err)
				os.Exit(2)
			}
			if r.ColdVerdict != r.WarmVerdict {
				fmt.Fprintf(os.Stderr, "boltbench: verdict diverged cold vs warm on %s: %v vs %v\n",
					r.Check.ID(), r.ColdVerdict, r.WarmVerdict)
				os.Exit(1)
			}
		}
		did = true
		fmt.Println()
	}
	if *incrB {
		rows := harness.IncrBench(opts, *incrTh, harness.Table1Checks())
		harness.WriteIncrTable(os.Stdout, *incrTh, rows)
		for _, r := range rows {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "boltbench: incr store error on %s: %v\n", r.Check.ID(), r.Err)
				os.Exit(2)
			}
			if !r.Confluent {
				fmt.Fprintf(os.Stderr, "boltbench: incremental re-check verdict diverged on %s\n", r.Check.ID())
				os.Exit(1)
			}
		}
		did = true
		fmt.Println()
	}
	if *compare != "" {
		old, err := harness.ReadStreamingBench(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "boltbench: bench gate cannot run: %v\n", err)
			os.Exit(2)
		}
		gateOpts := opts
		gateOpts.Cores = old.Cores
		fresh := harness.CollectStreaming(gateOpts, old.Threads, harness.Table1Checks())
		harness.WriteStreamingDiff(os.Stdout, old, fresh)
		regs := harness.CompareStreamingBench(old, fresh)
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "bench-gate: REGRESSION: "+r)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench-gate: PASS (total speedup %.2fx vs baseline %.2fx, tolerance %.0f%%)\n",
			fresh.TotalSpeedup, old.TotalSpeedup, harness.SpeedupRegressionTolerance*100)
		did = true
	}
	if !did {
		flag.Usage()
		os.Exit(2)
	}
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "boltbench: global -timeout expired; remaining runs were cancelled (stop reason %q)\n", "cancelled")
		os.Exit(2)
	}
}
