package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/parser"
)

// runGen drives run() in-process and returns (stdout, stderr, code).
func runGen(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestListMode(t *testing.T) {
	out, _, code := runGen(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"drivers:", "properties:", "toastmon", "parport"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestDriverMode(t *testing.T) {
	out, _, code := runGen(t, "-driver", "toastmon", "-property", "PnpIrpCompletion")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	prog, err := parser.Parse(out)
	if err != nil {
		t.Fatalf("emitted program does not parse: %v", err)
	}
	if len(prog.ProcNames()) == 0 {
		t.Fatal("emitted program has no procedures")
	}
}

func TestBuggyModeDiffers(t *testing.T) {
	clean, _, code := runGen(t, "-driver", "parport", "-property", "IrqlExAllocatePool")
	if code != 0 {
		t.Fatalf("clean exit %d", code)
	}
	buggy, _, code := runGen(t, "-driver", "parport", "-property", "IrqlExAllocatePool", "-buggy")
	if code != 0 {
		t.Fatalf("buggy exit %d", code)
	}
	if clean == buggy {
		t.Fatal("-buggy emitted the same program as the clean check")
	}
	if _, err := parser.Parse(buggy); err != nil {
		t.Fatalf("buggy program does not parse: %v", err)
	}
}

func TestAllMode(t *testing.T) {
	dir := t.TempDir()
	out, _, code := runGen(t, "-all", "-out", dir)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("-all wrote nothing")
	}
	if !strings.Contains(out, "wrote") {
		t.Errorf("-all did not report its write count: %q", out)
	}
	// Spot-check one emitted file parses.
	src, err := os.ReadFile(filepath.Join(dir, ents[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parser.Parse(string(src)); err != nil {
		t.Fatalf("%s does not parse: %v", ents[0].Name(), err)
	}
}

func TestMutateDeterministic(t *testing.T) {
	base, _, code := runGen(t, "-driver", "toastmon", "-property", "PnpIrpCompletion")
	if code != 0 {
		t.Fatalf("base exit %d", code)
	}
	prog := parser.MustParse(base)
	proc := prog.ProcNames()[0]

	a, _, code := runGen(t, "-driver", "toastmon", "-property", "PnpIrpCompletion", "-mutate", proc+"@7")
	if code != 0 {
		t.Fatalf("mutate exit %d", code)
	}
	b, _, _ := runGen(t, "-driver", "toastmon", "-property", "PnpIrpCompletion", "-mutate", proc+"@7")
	if a != b {
		t.Fatal("same seed produced different mutations")
	}
	if a == base {
		t.Fatal("mutation left the program unchanged")
	}
	if _, err := parser.Parse(a); err != nil {
		t.Fatalf("mutated program does not parse: %v", err)
	}
	other, _, _ := runGen(t, "-driver", "toastmon", "-property", "PnpIrpCompletion", "-mutate", proc+"@8")
	if other == a {
		t.Fatal("different seeds produced identical mutations")
	}
}

func TestMutateErrors(t *testing.T) {
	if _, errOut, code := runGen(t, "-driver", "toastmon", "-property", "PnpIrpCompletion", "-mutate", "nope"); code != 2 || !strings.Contains(errOut, "PROC@SEED") {
		t.Fatalf("bad spec: code %d, stderr %q", code, errOut)
	}
	if _, errOut, code := runGen(t, "-driver", "toastmon", "-property", "PnpIrpCompletion", "-mutate", "ghost@1"); code != 1 || !strings.Contains(errOut, "ghost") {
		t.Fatalf("missing proc: code %d, stderr %q", code, errOut)
	}
}

func TestUsageExit(t *testing.T) {
	_, errOut, code := runGen(t)
	if code != 2 || !strings.Contains(errOut, "usage:") {
		t.Fatalf("code %d, stderr %q", code, errOut)
	}
}
