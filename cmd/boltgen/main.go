// Command boltgen emits the synthetic device-driver benchmark suite as
// source files in the input language, and mutates generated programs
// for the incremental re-check workload.
//
// Usage:
//
//	boltgen -list
//	boltgen -driver toastmon -property PnpIrpCompletion [-buggy]
//	boltgen -driver toastmon -property PnpIrpCompletion -mutate dispatch_0@7
//	boltgen -all -out suite/
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/drivers"
	"repro/internal/incr"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its streams and exit code lifted out, so the tests
// can drive every mode in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("boltgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "list drivers and properties")
		driver   = fs.String("driver", "", "driver name")
		property = fs.String("property", "", "property name")
		buggy    = fs.Bool("buggy", false, "inject a property violation")
		mutate   = fs.String("mutate", "", "with -driver/-property, emit the program with procedure PROC mutated deterministically: PROC@SEED")
		all      = fs.Bool("all", false, "emit the whole suite")
		out      = fs.String("out", "suite", "output directory for -all")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *list:
		fmt.Fprintln(stdout, "drivers:")
		for _, d := range drivers.Named() {
			fmt.Fprintf(stdout, "  %-12s fanout=%d depth=%d shared=%d work=%d\n", d.Name, d.Fanout, d.Depth, d.Shared, d.Work)
		}
		fmt.Fprintln(stdout, "properties:")
		for _, p := range drivers.PropertyNames() {
			fmt.Fprintf(stdout, "  %s\n", p)
		}
	case *all:
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		n := 0
		for _, check := range drivers.SuiteChecks() {
			name := fmt.Sprintf("%s_%s.bolt", check.Driver, check.Property)
			src := drivers.Source(check.Config)
			if err := os.WriteFile(filepath.Join(*out, name), []byte(src), 0o644); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			n++
		}
		fmt.Fprintf(stdout, "wrote %d programs to %s\n", n, *out)
	case *driver != "" && *property != "":
		check := drivers.NamedCheck(*driver, *property, *buggy)
		src := drivers.Source(check.Config)
		if *mutate != "" {
			proc, seed, err := parseMutate(*mutate)
			if err != nil {
				fmt.Fprintf(stderr, "boltgen: %v\n", err)
				return 2
			}
			src, err = incr.MutateSource(src, proc, seed)
			if err != nil {
				fmt.Fprintf(stderr, "boltgen: %v\n", err)
				return 1
			}
		}
		fmt.Fprint(stdout, src)
	default:
		fmt.Fprintln(stderr, "usage: boltgen -list | -all [-out dir] | -driver D -property P [-buggy] [-mutate PROC@SEED]")
		return 2
	}
	return 0
}

// parseMutate splits a -mutate spec PROC@SEED.
func parseMutate(spec string) (string, int64, error) {
	proc, seedStr, ok := strings.Cut(spec, "@")
	if !ok || proc == "" {
		return "", 0, fmt.Errorf("-mutate %q is not PROC@SEED", spec)
	}
	seed, err := strconv.ParseInt(seedStr, 10, 64)
	if err != nil {
		return "", 0, fmt.Errorf("-mutate %q: bad seed %q", spec, seedStr)
	}
	return proc, seed, nil
}
