// Command boltgen emits the synthetic device-driver benchmark suite as
// source files in the input language.
//
// Usage:
//
//	boltgen -list
//	boltgen -driver toastmon -property PnpIrpCompletion [-buggy]
//	boltgen -all -out suite/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/drivers"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list drivers and properties")
		driver   = flag.String("driver", "", "driver name")
		property = flag.String("property", "", "property name")
		buggy    = flag.Bool("buggy", false, "inject a property violation")
		all      = flag.Bool("all", false, "emit the whole suite")
		out      = flag.String("out", "suite", "output directory for -all")
	)
	flag.Parse()

	switch {
	case *list:
		fmt.Println("drivers:")
		for _, d := range drivers.Named() {
			fmt.Printf("  %-12s fanout=%d depth=%d shared=%d work=%d\n", d.Name, d.Fanout, d.Depth, d.Shared, d.Work)
		}
		fmt.Println("properties:")
		for _, p := range drivers.PropertyNames() {
			fmt.Printf("  %s\n", p)
		}
	case *all:
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		n := 0
		for _, check := range drivers.SuiteChecks() {
			name := fmt.Sprintf("%s_%s.bolt", check.Driver, check.Property)
			src := drivers.Source(check.Config)
			if err := os.WriteFile(filepath.Join(*out, name), []byte(src), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			n++
		}
		fmt.Printf("wrote %d programs to %s\n", n, *out)
	case *driver != "" && *property != "":
		check := drivers.NamedCheck(*driver, *property, *buggy)
		fmt.Print(drivers.Source(check.Config))
	default:
		fmt.Fprintln(os.Stderr, "usage: boltgen -list | -all [-out dir] | -driver D -property P [-buggy]")
		os.Exit(2)
	}
}
