GO ?= go

.PHONY: ci fmt vet build cross test race trace-smoke prof-selftest watchdog-smoke prov-smoke incr-smoke bench-gate fuzz-smoke bench bench-snapshot

# ci is the tier-1 gate: everything must pass before a change lands.
ci: fmt vet build cross test race trace-smoke prof-selftest watchdog-smoke prov-smoke incr-smoke bench-gate fuzz-smoke

# fmt fails when any tracked file is not gofmt-clean (prints offenders).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# cross builds for a 32-bit target: int is 32 bits there, which catches
# the signed-overflow bug class (e.g. int(hash32) % n going negative)
# together with vet and the uint32-modulo regression tests.
cross:
	GOARCH=386 $(GO) build ./...

test:
	$(GO) test ./...

# race re-runs the concurrency-heavy packages under the race detector:
# the streaming engine, the sharded summary database, the solver's
# entailment cache and fuzz seed corpus (shared interning table under
# concurrent PUNCH), the hash-consing table itself, the query tree's
# coalescing machinery, the persistent summary store, and the
# observability layer (live probe, watchdog, flight recorder, debug
# server — all sampled from outside the run's goroutines).
race:
	$(GO) test -race ./internal/core/... ./internal/summary/... ./internal/smt ./internal/logic ./internal/query ./internal/store ./internal/wire ./internal/obs ./internal/incr

# trace-smoke round-trips a corpus program through all three engines with
# the Chrome tracer attached and validates the serialized document.
trace-smoke:
	$(GO) test -run TestTraceRoundTrip -count=1 ./internal/obs

# prof-selftest replays the corpus through all three engines, pipes each
# event stream through the JSONL encoding, and checks the trace
# analyzer's invariants (span <= work, critical path sums to span, ...).
prof-selftest:
	$(GO) run ./cmd/boltprof -selftest

# watchdog-smoke seeds a deliberate stall (a PUNCH parked on a gate),
# points the stall watchdog at the live probe on a fast tick, and
# requires a structured diagnosis with the flight recorder's event
# history attached before the run is released.
watchdog-smoke:
	$(GO) test -run TestWatchdogStallSmoke -count=1 ./internal/core

# prov-smoke asserts the provenance invariants on the whole corpus:
# every verdict's cone is non-empty, closed under spawn and dependency
# edges, and byte-stable across the barrier, async, and distributed
# schedules — and invalidating prov.Cone(p) for any procedure leaves a
# warm re-check confluent with a from-scratch run.
prov-smoke:
	$(GO) test -run 'TestProvSmoke|TestConeInvalidationConfluence' -count=1 ./internal/core

# incr-smoke asserts end-to-end soundness of cone-based invalidation: on
# every corpus program and every engine, mutate each procedure once in
# an edit session and re-check incrementally over the surviving
# summaries; every step's verdict must match a from-scratch run.
incr-smoke:
	$(GO) test -run TestIncrSmoke -count=1 ./internal/incr

# bench-gate is the perf regression gate: collect a fresh streaming
# snapshot and diff it against the committed baseline. Fails when the
# total speedup drops more than 10% or any check's verdict changes.
bench-gate:
	$(GO) run ./cmd/boltbench -compare BENCH_streaming.json

# bench-snapshot regenerates the committed baseline the gate compares
# against (run after an intentional perf change, then commit the file).
bench-snapshot:
	$(GO) run ./cmd/boltbench -snapshot BENCH_streaming.json

# fuzz-smoke gives each fuzzer a short budget: the solver against its
# reference implementation, and the wire codec's decode/re-encode
# round trip on arbitrary bytes.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDPLLAgainstReference -fuzztime 10s ./internal/smt
	$(GO) test -run '^$$' -fuzz FuzzWireRoundTrip -fuzztime 10s ./internal/logic

# bench runs every benchmark in the repo once (all packages, not just
# the root: the harness, solver and store benches live in subpackages).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
