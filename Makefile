GO ?= go

.PHONY: ci vet build cross test race trace-smoke prof-selftest bench-gate bench

# ci is the tier-1 gate: everything must pass before a change lands.
ci: vet build cross test race trace-smoke prof-selftest bench-gate

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# cross builds for a 32-bit target: int is 32 bits there, which catches
# the signed-overflow bug class (e.g. int(hash32) % n going negative)
# together with vet and the uint32-modulo regression tests.
cross:
	GOARCH=386 $(GO) build ./...

test:
	$(GO) test ./...

# race re-runs the concurrency-heavy packages under the race detector:
# the streaming engine, the sharded summary database, the solver's
# entailment cache and fuzz seed corpus (shared interning table under
# concurrent PUNCH), the hash-consing table itself, and the query tree's
# coalescing machinery.
race:
	$(GO) test -race ./internal/core/... ./internal/summary/... ./internal/smt ./internal/logic ./internal/query

# trace-smoke round-trips a corpus program through all three engines with
# the Chrome tracer attached and validates the serialized document.
trace-smoke:
	$(GO) test -run TestTraceRoundTrip -count=1 ./internal/obs

# prof-selftest replays the corpus through all three engines, pipes each
# event stream through the JSONL encoding, and checks the trace
# analyzer's invariants (span <= work, critical path sums to span, ...).
prof-selftest:
	$(GO) run ./cmd/boltprof -selftest

# bench-gate is the perf regression gate: collect a fresh streaming
# snapshot and diff it against the committed baseline. Fails when the
# total speedup drops more than 10% or any check's verdict changes.
bench-gate:
	$(GO) run ./cmd/boltbench -compare BENCH_streaming.json

bench:
	$(GO) test -run XXX -bench . -benchtime 1x .
