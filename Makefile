GO ?= go

.PHONY: ci vet build test race bench

# ci is the tier-1 gate: everything must pass before a change lands.
ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race re-runs the concurrency-heavy packages under the race detector:
# the streaming engine and the sharded summary database.
race:
	$(GO) test -race ./internal/core/... ./internal/summary/...

bench:
	$(GO) test -run XXX -bench . -benchtime 1x .
