// Analyses: run the same verification question under all three PUNCH
// instantiations — may-must (DASH-style), may (SLAM/BLAST-style), and
// must (DART-style) — illustrating BOLT's pluggable architecture.
package main

import (
	"fmt"
	"time"

	bolt "repro"
)

const src = `
program analyses;
globals reqs, grants;

proc main {
  reqs = 0; grants = 0;
  client();
  client();
  server();
  assert(grants <= reqs);
}

proc client {
  locals want;
  havoc want;
  if (want > 0) { reqs = reqs + 1; }
}

proc server {
  if (grants < reqs) { grants = grants + 1; }
}
`

const buggySrc = `
program analyses_bug;
globals reqs, grants;

proc main {
  reqs = 0; grants = 0;
  server();
  assert(grants <= reqs);
}

proc server {
  grants = grants + 1;
}
`

func main() {
	fmt.Println("safe protocol:")
	runAll(src)
	fmt.Println()
	fmt.Println("buggy protocol:")
	runAll(buggySrc)
}

func runAll(text string) {
	prog := bolt.MustParse(text)
	for _, a := range []bolt.Analysis{bolt.MayMust, bolt.May, bolt.Must} {
		res := prog.Check(bolt.Options{
			Analysis: a,
			Threads:  4,
			Timeout:  30 * time.Second,
		})
		note := ""
		if res.Verdict == bolt.Unknown {
			switch a {
			case bolt.Must:
				note = " (a pure must-analysis cannot prove safety here)"
			case bolt.May:
				note = " (pure refinement may diverge here; may-must converges)"
			}
		}
		fmt.Printf("  %-9s → %v%s\n", a, res.Verdict, note)
	}
}
