// Deviceverify: generate a synthetic device driver from the benchmark
// suite, verify it against SDV-style safety properties, and show BOLT
// finding an injected protocol violation.
package main

import (
	"fmt"
	"time"

	bolt "repro"
	"repro/internal/drivers"
)

func main() {
	// A correct parport-class driver against three properties.
	for _, prop := range []string{"PnpIrpCompletion", "IoAllocateFree", "MarkPowerDown"} {
		check := drivers.NamedCheck("parport", prop, false)
		prog := bolt.MustParse(drivers.Source(check.Config))
		start := time.Now()
		res := prog.Check(bolt.Options{Threads: 8, Timeout: 60 * time.Second})
		fmt.Printf("%-40s %-18v %6d queries  %v\n",
			check.ID(), res.Verdict, res.TotalQueries, time.Since(start).Round(time.Millisecond))
	}

	// The same driver with an injected remove-lock violation.
	check := drivers.NamedCheck("parport", "NsRemoveLockMnRemove", true)
	prog := bolt.MustParse(drivers.Source(check.Config))
	res := prog.Check(bolt.Options{Threads: 8, Timeout: 60 * time.Second})
	fmt.Printf("%-40s %-18v (injected bug)\n", check.ID()+"*", res.Verdict)
}
