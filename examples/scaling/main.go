// Scaling: sweep the thread throttle on one driver check and print the
// speedup curve (the shape of the paper's Fig. 6), measured in
// deterministic virtual time.
package main

import (
	"fmt"
	"strings"

	"repro/internal/drivers"
	"repro/internal/harness"
)

func main() {
	check := drivers.NamedCheck("parport", "MarkPowerDown", false)
	fmt.Printf("check: %s  (#cores=8 virtual)\n\n", check.ID())
	fmt.Printf("%8s %12s %9s %8s  %s\n", "threads", "ticks", "speedup", "queries", "")
	var base int64
	for _, th := range []int{1, 2, 4, 8, 16, 32, 64} {
		r := harness.RunCheck(check, th, harness.Options{})
		if th == 1 {
			base = r.Ticks
		}
		speedup := float64(base) / float64(r.Ticks)
		bar := strings.Repeat("█", int(speedup*6))
		fmt.Printf("%8d %12d %8.2fx %8d  %s\n", th, r.Ticks, speedup, r.Queries, bar)
	}
}
