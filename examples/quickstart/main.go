// Quickstart: parse a small program, verify its assertion with BOLT, and
// print the verdict for a safe and a buggy variant.
package main

import (
	"fmt"

	bolt "repro"
)

const safe = `
program quickstart;
globals balance;

proc main {
  locals amount;
  balance = 100;
  havoc amount;
  assume(amount >= 0 && amount <= balance);
  withdraw();
  assert(balance >= 0);
}

proc withdraw {
  // Withdraw any amount up to the current balance.
  locals take;
  havoc take;
  assume(take >= 0 && take <= balance);
  balance = balance - take;
}
`

const buggy = `
program quickstart_bug;
globals balance;

proc main {
  balance = 100;
  withdraw();
  assert(balance >= 0);
}

proc withdraw {
  // Oops: no bounds check on the withdrawal.
  locals take;
  havoc take;
  assume(take >= 0);
  balance = balance - take;
}
`

func main() {
	for _, src := range []struct {
		name string
		text string
	}{{"safe", safe}, {"buggy", buggy}} {
		prog, err := bolt.Parse(src.text)
		if err != nil {
			panic(err)
		}
		res := prog.Check(bolt.Options{Threads: 4, FindWitness: true})
		fmt.Printf("%-6s → %v  (%d queries, %d iterations)\n",
			src.name, res.Verdict, res.TotalQueries, res.Iterations)
		if res.Witness != nil {
			fmt.Print(res.Witness.Text)
		}
	}
}
