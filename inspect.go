// Live-introspection facade: the handles callers keep across runs to
// watch a check while it is in flight. An Inspector owns the stable
// obs.Probe the engines attach to; pair it with a FlightRecorder and a
// Watchdog and serve all three with obs.StartDebugServer (the
// /debug/bolt/* endpoints) via DebugState.
//
//	insp := bolt.NewInspector()
//	flight := obs.NewFlightRecorder(0)
//	addr, _ := obs.StartDebugServer(":6060", bolt.DebugState(reg, insp, flight, nil))
//	res := prog.Check(bolt.Options{Threads: 32, Async: true, Inspect: insp, FlightRecorder: flight})
package bolt

import (
	"runtime"

	"repro/internal/obs"
	"repro/internal/wire"
)

// Inspector is the stable live-introspection handle: create one, pass
// it to any number of (sequential) runs via Options.Inspect, and sample
// it from any goroutine at any time. While a run is attached State
// returns a fresh snapshot of the live engine; after the run ends it
// returns the frozen final snapshot. All methods are nil-receiver safe,
// so an optional *Inspector costs its holder nothing.
type Inspector struct {
	probe obs.Probe
}

// NewInspector returns an idle inspector.
func NewInspector() *Inspector { return &Inspector{} }

// Probe exposes the underlying obs.Probe — what Options.Inspect threads
// into the engines and obs.DebugState/obs.WatchdogConfig consume. Nil
// on a nil inspector, which every consumer treats as "introspection
// off".
func (i *Inspector) Probe() *obs.Probe {
	if i == nil {
		return nil
	}
	return &i.probe
}

// State samples the current run (or the frozen final state of the last
// one). Nil when no run has ever attached.
func (i *Inspector) State() *obs.StateSnapshot { return i.Probe().State() }

// Phase reports whether a run is idle, in flight, or finished.
func (i *Inspector) Phase() obs.RunPhase { return i.Probe().Phase() }

// EngineList names the engines this binary compiles in, as stamped into
// bolt_build_info.
const EngineList = "barrier,async,dist"

// BuildInfo identifies this binary for the bolt_build_info metric and
// the /debug/bolt/health document.
func BuildInfo() obs.BuildInfo {
	return obs.BuildInfo{
		GoVersion:   runtime.Version(),
		WireVersion: wire.Version,
		Engines:     EngineList,
	}
}

// DebugState bundles the observability handles for obs.StartDebugServer
// with the build info pre-stamped. Any handle may be nil — its endpoint
// then serves an empty (but well-formed) response.
func DebugState(m *obs.Metrics, insp *Inspector, flight *obs.FlightRecorder, wd *obs.Watchdog) obs.DebugState {
	return obs.DebugState{
		Metrics:  m,
		Probe:    insp.Probe(),
		Flight:   flight,
		Watchdog: wd,
		Build:    BuildInfo(),
	}
}
