package bolt_test

import (
	"fmt"

	bolt "repro"
)

func ExampleProgram_Check() {
	prog := bolt.MustParse(`
		globals balance;
		proc main {
			balance = 100;
			withdraw();
			assert(balance >= 0);
		}
		proc withdraw {
			locals take;
			havoc take;
			assume(take >= 0 && take <= balance);
			balance = balance - take;
		}`)
	res := prog.Check(bolt.Options{Threads: 8})
	fmt.Println(res.Verdict)
	// Output: Program is Safe
}

func ExampleProgram_Check_buggy() {
	prog := bolt.MustParse(`
		proc main {
			locals x;
			havoc x;
			assume(x > 3);
			assert(x > 4);
		}`)
	res := prog.Check(bolt.Options{Threads: 2})
	fmt.Println(res.Verdict)
	// Output: Error Reachable
}

func ExampleProgram_CheckReach() {
	prog := bolt.MustParse(`
		globals g;
		proc main { g = 0; step(); step(); }
		proc step { g = g + 1; }`)
	res, err := prog.CheckReach("main", "true", "g == 2", bolt.Options{Threads: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Verdict)
	// Output: Error Reachable
}

func ExampleAnalysis() {
	for _, a := range []bolt.Analysis{bolt.MayMust, bolt.May, bolt.Must} {
		fmt.Println(a)
	}
	// Output:
	// may-must
	// may
	// must
}
